// Star of cliques: the paper's motivating real-world topology — a
// MongoDB-style sharded cluster. The router tier is a star component
// (three hub routers, per a mongos/config replica set), and every shard is
// a clique (a replica set whose members all talk to each other). Each
// shard's uplink port is linked to the routers' config port.
//
//	go run ./examples/starofcliques
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sosf"
)

const src = `
# A sharded document store: router star + 6 replica-set cliques.
topology sharded_cluster {
    nodes 480
    let shards = 6

    component routers star {
        param hubs 3
        weight shards
        port config
    }

    repeat i 0 shards-1 {
        component shard[i] clique {
            weight 1
            port uplink
        }
    }
    repeat i 0 shards-1 {
        link routers.config shard[i].uplink
    }
}`

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, narrating to w. Extra options are applied
// last, which is how the smoke test injects a tiny population.
func run(w io.Writer, extra ...sosf.Option) error {
	opts := append([]sosf.Option{sosf.Options{Seed: 11}}, extra...)
	sys, err := sosf.New(src, opts...)
	if err != nil {
		return err
	}
	rounds, err := sys.Step(150)
	if err != nil {
		return err
	}
	rep := sys.Report()
	fmt.Fprintf(w, "sharded cluster assembled in %d rounds (converged: %v)\n\n", rounds, rep.Converged)
	fmt.Fprintf(w, "  %d nodes: half routing tier (star), half data tier (6 cliques)\n", rep.Nodes)
	fmt.Fprintf(w, "  realized system connected: %v\n\n", sys.Connected())

	// The uplink managers are the nodes a client driver would treat as
	// each shard's primary contact point.
	managers := sys.Managers()
	fmt.Fprintln(w, "contact points elected by the runtime:")
	for _, p := range sosf.ManagerPorts(managers) {
		fmt.Fprintf(w, "  %-18s -> node %d\n", p, managers[p])
	}

	// Kill a whole shard: the rest of the cluster must stay connected and
	// every other port keeps its manager.
	fmt.Fprintln(w, "\nfailing every node of shard[2]...")
	killed := sys.KillComponent("shard[2]")
	if _, err := sys.Step(40); err != nil {
		return err
	}
	fmt.Fprintf(w, "  %d nodes failed; survivors connected: %v\n", killed, sys.Connected())
	acc := sys.Accuracy()
	fmt.Fprintf(w, "  surviving shapes intact: %.3f, port elections settled: %.3f\n",
		acc["Elementary Topology"], acc["Port Selection"])
	return nil
}
