// Opportunistic relay composition: the paper's future-work vision (§5) —
// "a group of nodes could leverage a third-party system as relays and use
// it to remain connected."
//
// Two sensor clusters (cliques) are joined through a dedicated relay
// backbone (a line component). When the backbone is wiped out, the
// operator re-composes the same clusters around an unrelated third-party
// system — a city mesh modeled as a torus — which now carries the link
// between the clusters. The clusters themselves never change shape.
//
//	go run ./examples/iotrelay
package main

import (
	"fmt"
	"log"

	"sosf"
)

const withBackbone = `
topology sensors_with_backbone {
    nodes 480

    component east clique {
        weight 1
        port out
    }
    component west clique {
        weight 1
        port out
    }
    component backbone line {
        weight 2
        port left
        port right
    }

    link east.out backbone.left
    link west.out backbone.right
}`

const viaCityMesh = `
topology sensors_via_city_mesh {
    nodes 480

    component east clique {
        weight 1
        port out
    }
    component west clique {
        weight 1
        port out
    }
    # The third-party system: a city-scale mesh that exists for its own
    # purposes; the clusters merely borrow it as a relay.
    component mesh torus {
        param width 8
        weight 4
        port uplink_east
        port uplink_west
    }

    link east.out mesh.uplink_east
    link west.out mesh.uplink_west
}`

func main() {
	log.SetFlags(0)

	sys, err := sosf.New(withBackbone, sosf.Options{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Step(150); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 1: clusters joined by dedicated backbone; connected=%v\n", sys.Connected())

	// The backbone dies (power cut across the relay line).
	killed := sys.KillComponent("backbone")
	if _, err := sys.Step(5); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("phase 2: backbone wiped out (%d nodes); connected=%v\n", killed, sys.Connected())

	// Opportunistic composition: reroute both clusters through the city
	// mesh. The reconfiguration reuses the surviving population; the mesh
	// component self-assembles from nodes reassigned to it.
	if err := sys.ReconfigureSource(viaCityMesh); err != nil {
		log.Fatal(err)
	}
	rounds, err := sys.Step(150)
	if err != nil {
		log.Fatal(err)
	}
	rep := sys.Report()
	fmt.Printf("phase 3: re-composed via third-party mesh in %d rounds; connected=%v, converged=%v\n",
		rounds, sys.Connected(), rep.Converged)
	for port, node := range sys.Managers() {
		fmt.Printf("  %-18s -> node %d\n", port, node)
	}
}
