// Opportunistic relay composition: the paper's future-work vision (§5) —
// "a group of nodes could leverage a third-party system as relays and use
// it to remain connected."
//
// Two sensor clusters (cliques) are joined through a dedicated relay
// backbone (a line component). A scripted scenario wipes the backbone out
// mid-run and then re-composes the same clusters around an unrelated
// third-party system — a city mesh modeled as a torus — which takes over
// carrying the link between the clusters. The clusters themselves never
// change shape, and the whole failure story is one declarative value
// instead of a hand-rolled driver loop.
//
//	go run ./examples/iotrelay
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sosf"
)

const withBackbone = `
topology sensors_with_backbone {
    nodes 480

    component east clique {
        weight 1
        port out
    }
    component west clique {
        weight 1
        port out
    }
    component backbone line {
        weight 2
        port left
        port right
    }

    link east.out backbone.left
    link west.out backbone.right
}`

const viaCityMesh = `
topology sensors_via_city_mesh {
    nodes 480

    component east clique {
        weight 1
        port out
    }
    component west clique {
        weight 1
        port out
    }
    # The third-party system: a city-scale mesh that exists for its own
    # purposes; the clusters merely borrow it as a relay.
    component mesh torus {
        param width 8
        weight 4
        port uplink_east
        port uplink_west
    }

    link east.out mesh.uplink_east
    link west.out mesh.uplink_west
}`

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, narrating to w. Extra options are applied
// last, which is how the smoke test injects a tiny population.
func run(w io.Writer, extra ...sosf.Option) error {
	// Round 40: power cut across the relay line. Round 45: the operator's
	// scripted response — re-compose both clusters around the city mesh.
	script := sosf.Scenario{
		sosf.At(40, sosf.KillComponent("backbone")),
		sosf.At(45, sosf.Reconfigure(viaCityMesh)),
	}
	opts := append([]sosf.Option{
		sosf.WithSeed(21),
		sosf.WithScenario(script),
	}, extra...)
	sys, err := sosf.New(withBackbone, opts...)
	if err != nil {
		return err
	}

	converged := false
	sys.Subscribe(func(ev sosf.RoundEvent) {
		for _, a := range ev.Actions {
			fmt.Fprintf(w, "round %3d: %s (connected=%v)\n", ev.Round, a, sys.Connected())
		}
		if ev.Converged && !converged {
			fmt.Fprintf(w, "round %3d: converged; connected=%v\n", ev.Round, sys.Connected())
		}
		converged = ev.Converged
	})

	if _, err := sys.Step(200); err != nil {
		return err
	}

	rep := sys.Report()
	fmt.Fprintf(w, "\nfinal: %q re-composed via third-party mesh; connected=%v\n",
		rep.Topology, sys.Connected())
	managers := sys.Managers()
	for _, port := range sosf.ManagerPorts(managers) {
		fmt.Fprintf(w, "  %-18s -> node %d\n", port, managers[port])
	}
	return nil
}
