package main

import (
	"bytes"
	"strings"
	"testing"

	"sosf"
)

// TestIoTRelaySmoke runs the example end to end with a tiny population:
// the relay backbone dies, the clusters re-compose around the city mesh,
// and the final system must be connected again.
func TestIoTRelaySmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sosf.WithNodes(48)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "re-composed via third-party mesh; connected=true") {
		t.Fatalf("clusters did not reconnect through the mesh:\n%s", out)
	}
}
