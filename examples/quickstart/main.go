// Quickstart: describe a two-component topology in the DSL, let the
// runtime self-assemble it, and print the convergence report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"sosf"
)

// Two rings joined by one link: the smallest interesting assembly.
const src = `
topology quickstart {
    nodes 200

    component left ring {
        weight 1
        port gateway
    }
    component right ring {
        weight 1
        port gateway
    }

    link left.gateway right.gateway
}`

func main() {
	log.SetFlags(0)
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run executes the example, narrating to w. Extra options are applied
// last, which is how the smoke test injects a tiny population.
func run(w io.Writer, extra ...sosf.Option) error {
	opts := append([]sosf.Option{sosf.Options{Seed: 1}}, extra...)

	// One call: compile the DSL, allocate the nodes across the two rings,
	// run the gossip stack until every layer converged.
	report, err := sosf.Run(src, opts...)
	if err != nil {
		return err
	}
	fmt.Fprint(w, report)

	// The managers of the two gateway ports carry the inter-ring link.
	sys, err := sosf.New(src, opts...)
	if err != nil {
		return err
	}
	if _, err := sys.Step(100); err != nil {
		return err
	}
	fmt.Fprintln(w, "\nport managers:")
	managers := sys.Managers()
	for _, port := range sosf.ManagerPorts(managers) {
		fmt.Fprintf(w, "  %-16s -> node %d\n", port, managers[port])
	}
	fmt.Fprintf(w, "\nrealized system connected: %v\n", sys.Connected())
	return nil
}
