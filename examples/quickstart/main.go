// Quickstart: describe a two-component topology in the DSL, let the
// runtime self-assemble it, and print the convergence report.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"sosf"
)

// Two rings joined by one link: the smallest interesting assembly.
const src = `
topology quickstart {
    nodes 200

    component left ring {
        weight 1
        port gateway
    }
    component right ring {
        weight 1
        port gateway
    }

    link left.gateway right.gateway
}`

func main() {
	log.SetFlags(0)

	// One call: compile the DSL, allocate 200 simulated nodes across the
	// two rings, run the gossip stack until every layer converged.
	report, err := sosf.Run(src, sosf.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report)

	// The managers of the two gateway ports carry the inter-ring link.
	sys, err := sosf.New(src, sosf.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := sys.Step(100); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nport managers:")
	managers := sys.Managers()
	for _, port := range sosf.ManagerPorts(managers) {
		fmt.Printf("  %-16s -> node %d\n", port, managers[port])
	}
	fmt.Printf("\nrealized system connected: %v\n", sys.Connected())
}
