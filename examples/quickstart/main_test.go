package main

import (
	"bytes"
	"strings"
	"testing"

	"sosf"
)

// TestQuickstartSmoke runs the example end to end with a tiny population.
func TestQuickstartSmoke(t *testing.T) {
	var buf bytes.Buffer
	if err := run(&buf, sosf.WithNodes(24)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "converged: true") {
		t.Fatalf("quickstart did not converge:\n%s", out)
	}
	if !strings.Contains(out, "realized system connected: true") {
		t.Fatalf("quickstart system not connected:\n%s", out)
	}
}
