#!/usr/bin/env bash
# Benchmark-regression gate: three steady-state full-stack rounds per
# anchored population (-benchmem so the allocs/op column feeds the gate),
# compared against the committed perf-trajectory record — any allocation
# per round, or more than 25% ns/op regression, fails. Then the
# worker-scaling gate: the 10k-node round at workers=1 vs workers=4 must
# reach a 1.5x speedup on a multi-core runner, so the sharded Deliver path
# cannot silently serialize (benchguard skips the ratio, with a note, on a
# single-CPU runner). Leaves /tmp/bench.txt behind for bench-record.sh.
set -euo pipefail

BASELINE="${BASELINE:-BENCH_PR8.json}"

go test -run '^$' -bench '^BenchmarkRound$/^n=(1k|10k)$' \
  -benchtime 3x -benchmem . | tee /tmp/bench.txt
go run ./cmd/benchguard -baseline "$BASELINE" \
  -bench /tmp/bench.txt -max-regress 25

go test -run '^$' -bench '^BenchmarkRoundWorkers$/^n=10k/workers=(1|4)$' \
  -benchtime 3x -benchmem . | tee /tmp/bench-workers.txt
go run ./cmd/benchguard -baseline "$BASELINE" \
  -bench /tmp/bench-workers.txt -max-regress 25 -min-speedup 1.5
