#!/usr/bin/env bash
# Golden-determinism gate: the per-node RNG draw sequence is API, so the
# playdemo event stream must be byte-identical to the committed fixture —
# serially and with the round sharded across 4 workers (the worker count
# must be invisible in the result).
set -euo pipefail

GOLDEN=testdata/golden/playdemo.events.jsonl

go run ./cmd/sos play -events jsonl -seed 1 testdata/playdemo.sos > /tmp/events.jsonl
test "$(wc -l < /tmp/events.jsonl)" -eq 150
cmp /tmp/events.jsonl "$GOLDEN"
go run ./cmd/sos play -events jsonl -seed 1 -workers 4 testdata/playdemo.sos > /tmp/events-w4.jsonl
cmp /tmp/events-w4.jsonl "$GOLDEN"
