#!/usr/bin/env bash
# Native Go fuzzing of the DSL front end: 30 seconds of mutation on the
# committed seed corpus. Crashes land in internal/dsl/testdata/fuzz and
# should be committed as regression inputs.
set -euo pipefail

go test -run '^$' -fuzz FuzzParse -fuzztime "${FUZZTIME:-30s}" ./internal/dsl/
