#!/usr/bin/env bash
# Fails when any file needs gofmt, listing the offenders.
set -euo pipefail

out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi
