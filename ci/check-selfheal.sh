#!/usr/bin/env bash
# Self-healing smoke: the same campaign with the generator's trailing
# repair reconfiguration stripped must still find zero violations — bare
# kill/churn timelines reconverge on the runtime's index re-densification
# alone. The legacy gap stays reproducible behind -no-heal: that campaign
# must keep failing, and its pinned reproducer is committed in
# testdata/corpus.
set -euo pipefail

go run ./cmd/sos fuzz -seed 1 -runs 6 -no-repair
if go run ./cmd/sos fuzz -seed 1 -runs 6 -no-repair -no-heal > /tmp/noheal.log 2>&1; then
  echo "-no-heal campaign found no violations; the legacy index-hole gap pin is gone" >&2
  exit 1
fi
grep -q 'reconverge' /tmp/noheal.log
