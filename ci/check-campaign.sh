#!/usr/bin/env bash
# Campaign smoke: the generative fault campaign over the built-in
# seed × topology × population matrix — randomized churn/partition/loss/
# join/kill timelines, checked for reconvergence, orphan tail, bandwidth,
# and resume equivalence. `sos fuzz` exits non-zero on any finding, so
# this run IS the zero-violation gate. The committed reproducer corpus
# replays under `go test ./...` (corpus_test.go).
set -euo pipefail

go run ./cmd/sos fuzz -seed 1 -runs 6
