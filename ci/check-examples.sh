#!/usr/bin/env bash
# Every example is a runnable demo of the public API; a smoke run catches
# API drift that unit tests miss.
set -euo pipefail

for d in examples/*/; do
  echo "== $d"
  go run "./$d" > /dev/null
done
