#!/usr/bin/env bash
# Regenerate the perf-trajectory record on this runner and gate its
# dist_scaling section. sosbench refuses to write the record if the
# worker-scaling sweep is flat while the record claims multiple CPUs, so
# the write itself re-checks that sharded rounds scale; benchguard's
# -dist-record gate then requires sane shards=1 and shards=2 round costs,
# so the sharded-process path cannot silently drop out of the measurement.
# The record is uploaded as an artifact for cross-runner comparison against
# the committed BENCH_*.json (never committed from CI — runner hardware
# varies run to run).
set -euo pipefail

BASELINE="${BASELINE:-BENCH_PR8.json}"

go run ./cmd/sosbench -fig4 -runs 2 -seed 1 -benchjson /tmp/BENCH_CI.json
cat /tmp/BENCH_CI.json

# benchguard always checks bench output alongside the record; reuse the
# gate's /tmp/bench.txt (same deterministic comparison), regenerating it if
# this script runs standalone.
if [ ! -f /tmp/bench.txt ]; then
  go test -run '^$' -bench '^BenchmarkRound$/^n=1k$' \
    -benchtime 3x -benchmem . > /tmp/bench.txt
fi
go run ./cmd/benchguard -baseline "$BASELINE" -bench /tmp/bench.txt \
  -max-regress 25 -dist-record /tmp/BENCH_CI.json
