#!/usr/bin/env bash
# Dist-equivalence gate: one simulation sharded across OS processes over
# loopback TCP must stream bytes identical to the serial golden fixture —
# at 1 shard and at 4 — and a coordinator-driven checkpoint lap at 4 shards
# (snapshot at round 75, resume to 150) must be invisible in the stream.
# Workers dial with a 15s retry window, so launch order is free.
set -euo pipefail

ADDR="127.0.0.1:${DIST_PORT:-18099}"
GOLDEN=testdata/golden/playdemo.events.jsonl
SOS=/tmp/sos-dist

go build -o "$SOS" ./cmd/sos

# run_dist SHARDS OUT [flags...]: a coordinator on $ADDR plus SHARDS
# subprocess workers; every process must exit 0.
run_dist() {
  local shards=$1 out=$2
  shift 2
  "$SOS" dist -shards "$shards" -listen "$ADDR" -events jsonl -seed 1 "$@" \
    testdata/playdemo.sos > "$out" &
  local coord=$!
  local workers=()
  for _ in $(seq 1 "$shards"); do
    "$SOS" dist -connect "$ADDR" &
    workers+=($!)
  done
  wait "$coord"
  local p
  for p in "${workers[@]}"; do wait "$p"; done
}

echo "== shards=1"
run_dist 1 /tmp/dist-s1.jsonl
cmp /tmp/dist-s1.jsonl "$GOLDEN"

echo "== shards=4"
run_dist 4 /tmp/dist-s4.jsonl
cmp /tmp/dist-s4.jsonl "$GOLDEN"

echo "== shards=4 checkpoint lap (snapshot at 75, resume to 150)"
run_dist 4 /tmp/dist-head.jsonl -rounds 75 -snap /tmp/dist-ck.sosnap
test "$(wc -l < /tmp/dist-head.jsonl)" -eq 75
run_dist 4 /tmp/dist-tail.jsonl -rounds 150 -resume /tmp/dist-ck.sosnap
test "$(wc -l < /tmp/dist-tail.jsonl)" -eq 75
cat /tmp/dist-head.jsonl /tmp/dist-tail.jsonl | cmp - "$GOLDEN"

echo "dist-equivalence gate OK"
