#!/usr/bin/env bash
# Resume-equivalence gate: run the playdemo scenario to round 75, snapshot,
# resume to 150, and byte-compare the concatenated event stream against the
# same frozen golden fixture the uninterrupted run is held to — serially
# and with rounds sharded across 4 workers. A checkpoint cycle must be
# invisible.
set -euo pipefail

GOLDEN=testdata/golden/playdemo.events.jsonl

for w in 1 4; do
  echo "== workers=$w"
  go run ./cmd/sos snapshot -rounds 75 -snap "/tmp/ck-w$w.sosnap" \
    -events jsonl -seed 1 -workers "$w" testdata/playdemo.sos > "/tmp/resume-head-w$w.jsonl"
  test "$(wc -l < "/tmp/resume-head-w$w.jsonl")" -eq 75
  go run ./cmd/sos resume -snap "/tmp/ck-w$w.sosnap" -rounds 150 \
    -events jsonl -seed 1 -workers "$w" testdata/playdemo.sos > "/tmp/resume-tail-w$w.jsonl"
  test "$(wc -l < "/tmp/resume-tail-w$w.jsonl")" -eq 75
  cat "/tmp/resume-head-w$w.jsonl" "/tmp/resume-tail-w$w.jsonl" \
    | cmp - "$GOLDEN"
done
