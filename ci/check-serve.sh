#!/usr/bin/env bash
# Serve smoke: boot `sos serve`, submit the playdemo scenario over HTTP,
# collect its SSE event stream, and byte-compare against the same golden
# fixture the play and resume gates use — the service layer must be
# invisible in the stream. Then check /metrics exposes the run and drive
# the sosbench serve client against the live instance.
set -euo pipefail

ADDR="127.0.0.1:${SERVE_PORT:-18080}"

go build -o /tmp/sos ./cmd/sos
/tmp/sos serve -addr "$ADDR" -dir /tmp/serve-data -max-resident 4 &
SERVE_PID=$!
for i in $(seq 1 50); do
  curl -sf "http://$ADDR/healthz" > /dev/null && break
  sleep 0.2
done
ID=$(curl -sf -X POST --data-binary @testdata/playdemo.sos \
  "http://$ADDR/jobs?start=1" \
  | python3 -c 'import json,sys; print(json.load(sys.stdin)["id"])')
curl -sf -X POST "http://$ADDR/jobs/$ID/wait" > /dev/null
curl -sfN "http://$ADDR/jobs/$ID/events" \
  | awk '/^event: end/{exit} sub(/^data: /, "")' > /tmp/serve-events.jsonl
cmp /tmp/serve-events.jsonl testdata/golden/playdemo.events.jsonl
curl -sf "http://$ADDR/metrics" | grep -q '^sosf_serve_rounds_total 150$'
curl -sf "http://$ADDR/metrics" | grep -q '^sosf_serve_protocol_bytes_total{protocol='
go run ./cmd/sosbench -serve "http://$ADDR" \
  -serve-jobs 4 -serve-concurrency 2 -serve-rounds 10 -benchjson /tmp/serve-bench.json
kill -INT $SERVE_PID
wait $SERVE_PID
