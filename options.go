package sosf

import "fmt"

// Default values used when the corresponding option is absent. They are
// applied by New and Run, not baked into the option constructors, so
// WithRounds(0) and WithSeed(0) mean literally zero — the representability
// the legacy Options struct lacked.
const (
	// DefaultRounds caps a run when WithRounds is not given.
	DefaultRounds = 150
	// DefaultSeed seeds a run when WithSeed is not given.
	DefaultSeed = 1
)

// Option configures New and Run. Options are built by the With*
// constructors; the deprecated Options struct also satisfies Option, so
// legacy call sites keep compiling.
type Option interface {
	apply(*config)
}

// optionFunc adapts a function to the Option interface.
type optionFunc func(*config)

func (f optionFunc) apply(c *config) { f(c) }

// config is the resolved configuration of one New/Run call.
type config struct {
	nodes       int
	rounds      int
	roundsSet   bool
	seed        int64
	seedSet     bool
	runToEnd    bool
	runToEndSet bool
	workers     int
	lossRate    float64
	churnRate   float64
	healing     bool
	healingSet  bool
	scenario    Scenario
	events      []func(RoundEvent)
	restorePath string
	snapEvery   int
	snapPath    string
	err         error // first invalid option, surfaced by New
}

func (c *config) fail(format string, args ...any) {
	if c.err == nil {
		c.err = fmt.Errorf(format, args...)
	}
}

// buildConfig folds the options and applies defaults for whatever was left
// unset.
func buildConfig(opts []Option) (*config, error) {
	c := &config{}
	for _, o := range opts {
		if o != nil {
			o.apply(c)
		}
	}
	if c.err != nil {
		return nil, c.err
	}
	if !c.roundsSet {
		c.rounds = DefaultRounds
	}
	if !c.seedSet {
		c.seed = DefaultSeed
	}
	return c, nil
}

// WithNodes sets the population size. Zero (the default) falls back to the
// topology's `nodes` option; one of the two must provide a size.
func WithNodes(n int) Option {
	return optionFunc(func(c *config) {
		if n < 0 {
			c.fail("sosf.WithNodes: population must be >= 0, got %d", n)
			return
		}
		c.nodes = n
	})
}

// WithRounds caps the simulation length. Unlike the deprecated
// Options.Rounds, zero is honored: WithRounds(0) builds a system and runs
// no rounds at all.
func WithRounds(n int) Option {
	return optionFunc(func(c *config) {
		if n < 0 {
			c.fail("sosf.WithRounds: rounds must be >= 0, got %d", n)
			return
		}
		c.rounds, c.roundsSet = n, true
	})
}

// WithSeed seeds all randomness of the run. Unlike the deprecated
// Options.Seed, every value is honored — WithSeed(0) is the seed 0, not
// "use the default".
func WithSeed(seed int64) Option {
	return optionFunc(func(c *config) { c.seed, c.seedSet = seed, true })
}

// WithRunToEnd keeps the simulation running after every layer converged
// (by default runs stop at convergence).
func WithRunToEnd() Option {
	return optionFunc(func(c *config) { c.runToEnd, c.runToEndSet = true, true })
}

// WithWorkers shards each simulation round across n workers. Randomness is
// drawn from counter-based per-node streams, so the run — figures, reports,
// and the streamed round events — is byte-identical for every worker count;
// workers only change how fast a round executes. n = 1 (the default) runs
// rounds serially in place; n = 0 selects GOMAXPROCS; larger n pins the
// worker count explicitly.
func WithWorkers(n int) Option {
	return optionFunc(func(c *config) {
		if n < 0 {
			c.fail("sosf.WithWorkers: workers must be >= 0, got %d", n)
			return
		}
		if n == 0 {
			c.workers = -1 // GOMAXPROCS, resolved by the engine
			return
		}
		c.workers = n
	})
}

// WithLoss drops each gossip exchange with the given probability.
func WithLoss(p float64) Option {
	return optionFunc(func(c *config) {
		if p < 0 || p >= 1 {
			c.fail("sosf.WithLoss: probability must be in [0, 1), got %g", p)
			return
		}
		c.lossRate = p
	})
}

// WithChurn replaces the given fraction of the population with fresh joins
// after every round.
func WithChurn(rate float64) Option {
	return optionFunc(func(c *config) {
		if rate < 0 || rate >= 1 {
			c.fail("sosf.WithChurn: rate must be in [0, 1), got %g", rate)
			return
		}
		c.churnRate = rate
	})
}

// WithHealing turns the self-healing layer on or off. On (the default),
// gradient rankers compare dense alive-ranks and the allocator re-densifies
// a component's index space when deaths leave too many holes, so bare
// kill/churn timelines reconverge to accuracy 1.0 without a reconfiguration.
// WithHealing(false) preserves the legacy behavior — an unreplaced death
// pins index-structured shapes below 1.0 until a `reconfigure` — which is
// what the regression pins and `sos fuzz -no-heal` use. An explicit
// WithHealing always wins over the source's `option heal`.
func WithHealing(on bool) Option {
	return optionFunc(func(c *config) { c.healing, c.healingSet = on, true })
}

// WithScenario schedules a declarative fault/reconfiguration timeline (see
// Scenario). It composes with a `scenario { ... }` block in the DSL source:
// both timelines run. A system carrying a scenario defaults to run-to-end
// so the whole timeline plays out; bound the run with WithRounds.
func WithScenario(sc Scenario) Option {
	return optionFunc(func(c *config) { c.scenario = append(c.scenario, sc...) })
}

// WithSnapshotEvery writes a checkpoint of the full run state to path after
// every n-th completed round. A "%d" verb in path is replaced by the round
// number (keep every checkpoint); without one the same file is rolled
// (always the latest). The checkpoint is written after all of the round's
// observers — scenario actions, churn, convergence tracking, event
// emission — so restoring it resumes exactly where the next round would
// have started. A failed write stops the run; the error surfaces from Step.
func WithSnapshotEvery(n int, path string) Option {
	return optionFunc(func(c *config) {
		if n < 1 {
			c.fail("sosf.WithSnapshotEvery: interval must be >= 1, got %d", n)
			return
		}
		if path == "" {
			c.fail("sosf.WithSnapshotEvery: path must not be empty")
			return
		}
		c.snapEvery, c.snapPath = n, path
	})
}

// WithRestoreFrom restores the run state from a checkpoint file written by
// System.Snapshot (or WithSnapshotEvery, or the DSL's `snapshot` action)
// once the system is built. The DSL source and behavior options must match
// the checkpointed run's; population, round counter, RNG position, and all
// protocol state come from the checkpoint. Stepping the restored system
// replays the uninterrupted run byte for byte, at any worker count.
func WithRestoreFrom(path string) Option {
	return optionFunc(func(c *config) {
		if path == "" {
			c.fail("sosf.WithRestoreFrom: path must not be empty")
			return
		}
		c.restorePath = path
	})
}

// WithEvents subscribes fn to the per-round event stream at construction
// time, equivalent to calling System.Subscribe before the first Step. See
// RoundEvent for what is emitted.
func WithEvents(fn func(RoundEvent)) Option {
	return optionFunc(func(c *config) {
		if fn != nil {
			c.events = append(c.events, fn)
		}
	})
}

// Options is the legacy all-in-one configuration struct. Zero values mean
// "use the default", which makes seed 0 and rounds 0 unrepresentable — the
// wart the functional options fix.
//
// Deprecated: an Options value still works anywhere an Option is accepted
// (New(src, Options{...}) keeps compiling), but new code should use
// WithNodes, WithRounds, WithSeed, WithChurn, WithLoss, WithRunToEnd,
// WithScenario, and WithEvents.
type Options struct {
	// Nodes is the population size; falls back to the topology's
	// `nodes` option (one of the two must be set).
	Nodes int
	// Rounds caps the simulation length (default 150).
	Rounds int
	// Seed drives all randomness (default 1).
	Seed int64
	// RunToEnd keeps simulating even after every layer converged
	// (by default runs stop at convergence).
	RunToEnd bool
	// LossRate drops each gossip exchange with this probability.
	LossRate float64
	// ChurnRate replaces this fraction of nodes with fresh joins after
	// every round.
	ChurnRate float64
}

// apply makes Options satisfy Option, preserving the legacy zero-value
// semantics exactly: zero fields leave the defaults in place.
func (o Options) apply(c *config) {
	if o.Nodes > 0 {
		c.nodes = o.Nodes
	}
	if o.Rounds > 0 {
		c.rounds, c.roundsSet = o.Rounds, true
	}
	if o.Seed != 0 {
		c.seed, c.seedSet = o.Seed, true
	}
	if o.RunToEnd {
		c.runToEnd, c.runToEndSet = true, true
	}
	if o.LossRate > 0 {
		c.lossRate = o.LossRate
	}
	if o.ChurnRate > 0 {
		c.churnRate = o.ChurnRate
	}
}
