package sosf

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"sort"
	"strings"

	"sosf/internal/core"
	"sosf/internal/dsl"
	"sosf/internal/scenario"
	"sosf/internal/sim"
	"sosf/internal/view"
)

// SubReport is the outcome of one runtime sub-procedure. The JSON field
// names are stable (they back `sos run -json`).
type SubReport struct {
	// Name is the paper's series label ("Elementary Topology", ...).
	Name string `json:"name"`
	// ConvergedAt is the first round the layer reached accuracy 1.0
	// (-1 if it never did).
	ConvergedAt int `json:"converged_at"`
	// Final is the accuracy at the end of the run, in [0, 1].
	Final float64 `json:"final"`
}

// Report summarizes a run. The JSON field names are stable (they back
// `sos run -json`).
type Report struct {
	// Topology is the name from the DSL source.
	Topology string `json:"topology"`
	// Components and Links count the assembled pieces.
	Components int `json:"components"`
	// Links is documented with Components.
	Links int `json:"links"`
	// Nodes is the final alive population.
	Nodes int `json:"nodes"`
	// Rounds is the number of simulated rounds.
	Rounds int `json:"rounds"`
	// Converged reports whether every sub-procedure reached 1.0.
	Converged bool `json:"converged"`
	// Subs holds one entry per runtime sub-procedure, in the paper's
	// presentation order.
	Subs []SubReport `json:"subs"`
	// BaselineBytes and OverheadBytes are mean bytes per node per round
	// for the shape protocols (peer sampling + cores) and the runtime
	// layers (UO1, UO2, port selection, port connection).
	BaselineBytes float64 `json:"baseline_bytes"`
	// OverheadBytes is documented with BaselineBytes.
	OverheadBytes float64 `json:"overhead_bytes"`
}

// String renders a compact human-readable report.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %q: %d components, %d links, %d nodes\n",
		r.Topology, r.Components, r.Links, r.Nodes)
	fmt.Fprintf(&b, "rounds: %d  converged: %v\n", r.Rounds, r.Converged)
	for _, s := range r.Subs {
		conv := "never"
		if s.ConvergedAt >= 0 {
			conv = fmt.Sprintf("round %d", s.ConvergedAt)
		}
		fmt.Fprintf(&b, "  %-26s converged: %-10s final accuracy: %.3f\n", s.Name, conv, s.Final)
	}
	fmt.Fprintf(&b, "bandwidth per node per round: baseline %.0f B, runtime overhead %.0f B\n",
		r.BaselineBytes, r.OverheadBytes)
	return b.String()
}

// Validate parses and validates DSL source without running anything.
func Validate(src string) error {
	_, err := dsl.ParseTopology(src)
	return err
}

// Run builds the system described by the DSL source, simulates it, and
// reports convergence — the one-call entry point.
//
//	report, err := sosf.Run(src, sosf.WithNodes(500), sosf.WithSeed(7))
func Run(src string, opts ...Option) (*Report, error) {
	sys, err := New(src, opts...)
	if err != nil {
		return nil, err
	}
	rounds := sys.RoundBudget()
	if !sys.cfg.roundsSet && sys.horizon > rounds {
		// Without an explicit WithRounds, a scenario run extends to the
		// timeline's horizon (like `sos play`) so no scheduled action is
		// silently truncated by the default cap.
		rounds = sys.horizon
	}
	if _, err := sys.Step(rounds); err != nil {
		return nil, err
	}
	return sys.Report(), nil
}

// System is a live simulated deployment that can be stepped, reconfigured,
// damaged interactively or by a scripted Scenario, and observed through a
// streaming round-event interface — what the examples build on.
type System struct {
	cfg        *config
	sys        *core.System
	tracker    *core.Tracker
	bound      *scenario.Bound
	horizon    int
	fileRounds int // the source's `option rounds` (0 when absent)
	events     []func(RoundEvent)
	snapErr    error // first periodic-snapshot write failure, surfaced by Step
	// healsSeen is the allocator heal count already reported through the
	// event stream; emit publishes the per-round delta and Restore re-syncs
	// it so a resumed run reports the same heals as the uninterrupted one.
	healsSeen uint64
}

// New compiles the DSL source and boots the full runtime stack over a
// fresh node population.
//
//	sys, err := sosf.New(src, sosf.WithNodes(500), sosf.WithChurn(0.01))
//
// The deprecated Options struct still satisfies Option, so legacy
// New(src, Options{...}) calls keep compiling.
func New(src string, opts ...Option) (*System, error) {
	cfg, err := buildConfig(opts)
	if err != nil {
		return nil, err
	}
	topo, err := dsl.ParseTopology(src)
	if err != nil {
		return nil, err
	}
	if !cfg.seedSet {
		// A .sos file can pin its own seed (`option seed 7`) so a committed
		// reproducer replays its exact run with no flags. An explicit
		// WithSeed always wins; the DefaultSeed applies only when neither
		// the caller nor the file says anything.
		cfg.seed = topo.Option("seed", cfg.seed)
	}
	if !cfg.healingSet {
		// Same precedence for the self-healing layer: a committed
		// reproducer can pin `option heal 0` to replay the legacy
		// no-healing behavior with no flags. Healing defaults to on.
		cfg.healing = topo.Option("heal", 1) != 0
	}
	if len(cfg.scenario) > 0 {
		// A programmatic scenario composes with (runs alongside) any
		// timeline embedded in the DSL source.
		events, err := cfg.scenario.compile()
		if err != nil {
			return nil, err
		}
		topo.Scenario = append(topo.Scenario, events...)
		if err := topo.ValidateScenario(); err != nil {
			return nil, err
		}
	}
	sys, err := core.NewSystem(core.Config{
		Topology:       topo,
		Nodes:          cfg.nodes,
		Seed:           cfg.seed,
		Workers:        cfg.workers,
		LossRate:       cfg.lossRate,
		DisableHealing: !cfg.healing,
	})
	if err != nil {
		return nil, err
	}
	s := &System{cfg: cfg, sys: sys, events: cfg.events,
		fileRounds: int(topo.Option("rounds", 0))}

	// Observer order mirrors a round's narrative: scripted actions fire
	// first, churn replaces nodes, the tracker measures the post-action
	// state, and the event emitter reports what the tracker saw.
	if len(topo.Scenario) > 0 {
		tl := scenario.New(topo.Scenario)
		bound, err := tl.Bind(sys)
		if err != nil {
			return nil, err
		}
		s.bound, s.horizon = bound, tl.Horizon()
		if !cfg.runToEndSet {
			// A timeline implies playing it out; stopping at the first
			// convergence would silently skip every later event.
			cfg.runToEnd = true
		}
	}
	if cfg.churnRate > 0 {
		sys.Engine().Observe(sys.ChurnObserver(cfg.churnRate, 0, 0))
	}
	s.tracker = core.NewTracker(sys, !cfg.runToEnd)
	if s.bound != nil {
		// A scheduled reconfiguration restarts the convergence clock,
		// exactly like an interactive ReconfigureSource.
		s.bound.OnReconfigure = s.tracker.Reset
	}
	sys.Engine().Observe(sim.ObserverFunc(s.emit))
	if s.bound != nil {
		// Scheduled `snapshot` actions write the full sosf-level
		// checkpoint (engine + allocator + tracker + timeline windows).
		s.bound.OnSnapshot = func(round int, path string) error {
			return s.WriteSnapshot(snapshotPath(path, round))
		}
	}
	if cfg.snapEvery > 0 {
		// Registered last: the checkpoint must capture the post-observer
		// state of the round, including everything emitted above.
		sys.Engine().Observe(s.snapshotObserver(cfg.snapEvery, cfg.snapPath))
	}
	if cfg.restorePath != "" {
		// Buffer the checkpoint so the layered readers (core body, sosf
		// trailer) decode from an in-memory stream.
		data, err := os.ReadFile(cfg.restorePath)
		if err != nil {
			return nil, err
		}
		if err := s.Restore(bytes.NewReader(data)); err != nil {
			return nil, fmt.Errorf("sosf: restore from %s: %w", cfg.restorePath, err)
		}
	}
	return s, nil
}

// Step simulates up to n more rounds (stopping early at convergence unless
// WithRunToEnd was set or a scenario is playing) and returns the rounds
// actually executed.
func (s *System) Step(n int) (int, error) {
	return s.StepContext(context.Background(), n)
}

// StepContext is Step with cooperative cancellation: the context is checked
// at every round boundary, never mid-round, so a cancelled system is always
// left in a state that can be snapshotted (WriteSnapshot) or stepped again.
// A cancelled call returns the rounds it executed together with ctx.Err();
// this is what `sos serve` uses to pause and stop jobs cleanly, and what
// turns a SIGINT in `sos play` into a final checkpoint instead of a
// mid-round death.
func (s *System) StepContext(ctx context.Context, n int) (int, error) {
	executed, err := s.sys.RunContext(ctx, n)
	if s.bound != nil {
		if serr := s.bound.Err(); serr != nil {
			return executed, serr
		}
	}
	if s.snapErr != nil {
		return executed, s.snapErr
	}
	return executed, err
}

// Engine returns the underlying round engine. sim is an internal package,
// so this is an intra-module affordance: it is the handle the distributed
// runner (internal/dist) shards rounds and imports remote plans through.
func (s *System) Engine() *sim.Engine { return s.sys.Engine() }

// Size returns the engine's slot-space size (alive and dead slots alike) —
// the domain a distributed run partitions into contiguous shards. Every
// replica of a run sees the same size at the same round, so shard bounds
// recomputed from it stay consistent across processes.
func (s *System) Size() int { return s.sys.Engine().Size() }

// DistRound executes one round with the Plan phase of the exchange-routing
// protocols restricted to the alive slots in [lo, hi), invoking exch at
// each such protocol's Deliver barrier — the distributed sibling of Step.
// It performs Step's end-of-round bookkeeping (scenario errors, periodic
// snapshot failures), so coordinator and worker loops built on it observe
// the same failures a serial run would.
func (s *System) DistRound(lo, hi int, exch sim.ShardExchange) (stop bool, err error) {
	stop, err = s.sys.Engine().RunRoundSharded(lo, hi, exch)
	if err != nil {
		return stop, err
	}
	if s.bound != nil {
		if serr := s.bound.Err(); serr != nil {
			return stop, serr
		}
	}
	if s.snapErr != nil {
		return stop, s.snapErr
	}
	return stop, nil
}

// RoundBudget resolves the run's round budget: an explicit WithRounds wins,
// otherwise the source's `option rounds`, otherwise DefaultRounds. This is
// what `sos run/play/snapshot/dot` simulate when no -rounds flag is given,
// so a .sos file carrying `option rounds` is self-contained.
func (s *System) RoundBudget() int {
	if s.cfg.roundsSet {
		return s.cfg.rounds
	}
	if s.fileRounds > 0 {
		return s.fileRounds
	}
	return DefaultRounds
}

// ScenarioHorizon returns the last round the system's scenario timeline
// touches (0 when no scenario is scheduled) — the minimum number of rounds
// a run must execute to play the whole script.
func (s *System) ScenarioHorizon() int { return s.horizon }

// ReconfigureSource swaps in a new target topology from DSL source. The
// system keeps running; every layer re-converges to the new shape.
func (s *System) ReconfigureSource(src string) error {
	topo, err := dsl.ParseTopology(src)
	if err != nil {
		return err
	}
	if err := s.sys.Reconfigure(topo); err != nil {
		return err
	}
	// Convergence marks restart: the interesting question after a
	// reconfiguration is how fast the *new* shape assembles.
	s.tracker.Reset()
	return nil
}

// Kill fails a fraction of all nodes at once (catastrophic failure
// injection), returning how many died.
func (s *System) Kill(fraction float64) int {
	return len(s.sys.Kill(fraction))
}

// KillComponent fails every current member of the named component
// (targeted failure injection), returning how many died. Unknown names
// kill nothing.
func (s *System) KillComponent(name string) int {
	return s.sys.KillComponent(name)
}

// Connected reports whether the realized system topology (component
// overlays plus established links) is one connected piece over all alive
// nodes.
func (s *System) Connected() bool {
	return s.sys.Oracle().RealizedGraph().ConnectedOver(s.sys.Engine().AliveSlots())
}

// OrphanCount reports the health of the peer-sampling substrate: alive is
// the current population and orphans how many of those nodes appear in
// nobody's peer-sampling view (in-degree zero). The bulk-synchronous
// rounds plan every exchange against round-start views, so a transient
// orphan tail of up to ~1% can appear under faults and self-heals within a
// few rounds; a persistent tail beyond that signals a broken overlay (the
// fuzzing campaign's orphan invariant watches exactly this).
func (s *System) OrphanCount() (orphans, alive int) {
	eng := s.sys.Engine()
	rps := s.sys.RPS()
	slots := eng.AliveSlots()
	indeg := make(map[int]int, len(slots))
	for _, slot := range slots {
		for _, id := range rps.View(slot).IDs() {
			if n := eng.Lookup(id); n != nil && n.Alive {
				indeg[n.Slot]++
			}
		}
	}
	for _, slot := range slots {
		if indeg[slot] == 0 {
			orphans++
		}
	}
	return orphans, len(slots)
}

// ManagerPorts returns the "component.port" keys of a Managers map in
// sorted order, for deterministic iteration and reporting.
func ManagerPorts(managers map[string]int64) []string {
	ports := make([]string, 0, len(managers))
	for p := range managers {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	return ports
}

// Managers returns the ground-truth manager node of every port, keyed by
// "component.port". Ports of empty components are omitted.
func (s *System) Managers() map[string]int64 {
	topo := s.sys.Allocator().Topology()
	out := make(map[string]int64)
	for ci := range topo.Components {
		comp := view.ComponentID(ci)
		members := membersOf(s.sys, comp)
		if len(members) == 0 {
			continue
		}
		for pi, port := range topo.Components[ci].Ports {
			if mgr, ok := s.sys.Oracle().Winner(members, comp, int32(pi)); ok {
				out[topo.Components[ci].Name+"."+port] = int64(mgr.ID)
			}
		}
	}
	return out
}

// StuckComponents names the components whose elementary shape is not fully
// realized right now (empty when Elementary Topology is at 1.0), in
// topology order — the per-component refinement of Accuracy's "Elementary
// Topology" entry, for diagnosing which component failed to (re)assemble.
func (s *System) StuckComponents() []string {
	return s.sys.Oracle().StuckComponents()
}

// Accuracy returns the current accuracy of every sub-procedure, keyed by
// the paper's series labels.
func (s *System) Accuracy() map[string]float64 {
	m := s.sys.Oracle().Measure()
	out := make(map[string]float64, 5)
	for _, sub := range core.Subs() {
		out[sub.String()] = m.Fraction[sub]
	}
	return out
}

// Report summarizes the run so far.
func (s *System) Report() *Report {
	topo := s.sys.Allocator().Topology()
	rep := &Report{
		Topology:   topo.Name,
		Components: len(topo.Components),
		Links:      len(topo.Links),
		Nodes:      s.sys.Engine().AliveCount(),
		Rounds:     s.sys.Engine().Round(),
	}
	m := s.sys.Oracle().Measure()
	rep.Converged = m.AllConverged()
	for _, sub := range core.Subs() {
		rep.Subs = append(rep.Subs, SubReport{
			Name:        sub.String(),
			ConvergedAt: s.tracker.ConvergenceRound(sub),
			Final:       m.Fraction[sub],
		})
	}
	meterRounds := s.sys.Engine().Meter().Rounds()
	if meterRounds > 0 && rep.Nodes > 0 {
		var base, over int64
		for r := 0; r < meterRounds; r++ {
			b, o := s.sys.BandwidthByClass(r)
			base += b
			over += o
		}
		div := float64(meterRounds) * float64(rep.Nodes)
		rep.BaselineBytes = float64(base) / div
		rep.OverheadBytes = float64(over) / div
	}
	return rep
}

// ProtocolNames returns the names of the metered protocol layers in their
// per-round step order (peer sampling first). The order matches the byte
// slices returned by ProtocolBandwidth.
func (s *System) ProtocolNames() []string {
	return s.sys.Engine().Meter().Names()
}

// ProtocolBandwidth returns the bytes each protocol layer put on the
// simulated wire during the given completed round (0-based), in
// ProtocolNames order. It returns nil when the round has not completed.
// This is the per-layer refinement of RoundEvent's baseline/overhead split,
// and it is what feeds the per-protocol bandwidth counters of the
// `sos serve` /metrics endpoint.
func (s *System) ProtocolBandwidth(round int) []int64 {
	m := s.sys.Engine().Meter()
	if round < 0 || round >= m.Rounds() {
		return nil
	}
	out := make([]int64, len(m.Names()))
	for p := range out {
		out[p] = m.RoundTotal(round, p)
	}
	return out
}

// DOT renders the realized system topology (the union of the component
// overlays plus the established inter-component links) as a Graphviz
// document, one color per component, port managers drawn as boxes.
func (s *System) DOT() string {
	eng := s.sys.Engine()
	oracle := s.sys.Oracle()
	g := oracle.RealizedGraph()
	topo := s.sys.Allocator().Topology()

	palette := []string{
		"#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3",
		"#fdb462", "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd",
	}
	managers := make(map[int]bool)
	for si := range s.sys.Allocator().Sides() {
		side := s.sys.Allocator().Sides()[si]
		members := membersOf(s.sys, side.Comp)
		if len(members) == 0 {
			continue
		}
		if mgr, ok := oracle.Winner(members, side.Comp, side.Port); ok {
			managers[mgr.Slot] = true
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, "graph %q {\n  overlap=false;\n  node [style=filled];\n", topo.Name)
	for _, slot := range eng.AliveSlots() {
		n := eng.Node(slot)
		color := palette[int(n.Profile.Comp)%len(palette)]
		shape := "circle"
		if managers[slot] {
			shape = "box"
		}
		label := ""
		if n.Profile.Comp >= 0 && int(n.Profile.Comp) < len(topo.Components) {
			label = topo.Components[n.Profile.Comp].Name
		}
		fmt.Fprintf(&b, "  n%d [label=%q, fillcolor=%q, shape=%s];\n",
			n.ID, fmt.Sprintf("%s/%d", label, n.Profile.Index), color, shape)
	}
	type edge struct{ a, b view.NodeID }
	var edges []edge
	for _, slot := range eng.AliveSlots() {
		for _, peer := range g.Neighbors(slot) {
			if slot < peer {
				edges = append(edges, edge{eng.Node(slot).ID, eng.Node(peer).ID})
			}
		}
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].a != edges[j].a {
			return edges[i].a < edges[j].a
		}
		return edges[i].b < edges[j].b
	})
	for _, e := range edges {
		fmt.Fprintf(&b, "  n%d -- n%d;\n", e.a, e.b)
	}
	b.WriteString("}\n")
	return b.String()
}

// membersOf lists alive current-epoch members of a component sorted by
// index (the oracle's dense-rank order).
func membersOf(sys *core.System, comp view.ComponentID) []*sim.Node {
	eng := sys.Engine()
	epoch := sys.Allocator().Epoch()
	var out []*sim.Node
	for _, slot := range eng.AliveSlots() {
		n := eng.Node(slot)
		if n.Profile.Comp == comp && n.Profile.Epoch == epoch {
			out = append(out, n)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Profile.Index != out[j].Profile.Index {
			return out[i].Profile.Index < out[j].Profile.Index
		}
		return out[i].ID < out[j].ID
	})
	return out
}
