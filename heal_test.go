package sosf

// The self-healing contract: a bare kill — no reconfiguration, no
// replacement joins — leaves index holes in every surviving component, and
// the runtime repair layer (dense alive-rank translation plus threshold
// re-densification) must carry the system back to accuracy 1.0 on its own.
// These tests pin that end-to-end across structurally different shapes,
// prove the legacy `-no-heal` gap is still reproducible, and hold the heal
// path to the same determinism bar as everything else: byte-identical
// streams across worker counts and across a snapshot/restore cycle taken
// mid-heal.

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
)

// healShapes are the tentpole's acceptance shapes: each first component
// exercises a different index-arithmetic family (hierarchy, mesh, wrapped
// mesh, hub fan-out) so a dense-rank translation bug in any of them shows
// up as a reconvergence failure.
var healShapes = []struct {
	name   string
	clause string // shape + params for the main component
}{
	{"tree", "tree { param arity 2 weight 2 port p }"},
	{"grid", "grid { param width 8 weight 2 port p }"},
	{"torus", "torus { param width 8 weight 2 port p }"},
	{"torus-ragged", "torus { param width 5 weight 2 port p }"},
	{"star-hub", "star { param hubs 2 weight 2 port p }"},
}

// healSource builds a two-component topology whose main component uses the
// given shape clause. 96 nodes at weight 2:1 gives the main component 64
// members — enough that a 50% blast leaves real index holes everywhere.
func healSource(clause string) string {
	return fmt.Sprintf(`topology healcase {
  nodes 96
  component main %s
  component aux line { weight 1 port q }
  link main.p aux.q
}
`, clause)
}

const (
	healKillRound = 25
	healRounds    = healKillRound + 40 // the campaign's ReconvergeWithin budget
)

// healScenario is the bare fault: half the population dies at round 25 and
// nothing replaces it.
func healScenario() Scenario { return Scenario{At(healKillRound, Kill(0.5))} }

// runHeal runs one bare-kill timeline and returns the decoded events.
func runHeal(t *testing.T, src string, opts ...Option) []RoundEvent {
	t.Helper()
	base := []Option{WithSeed(5), WithRounds(healRounds), WithScenario(healScenario()), WithRunToEnd()}
	sys, err := New(src, append(base, opts...)...)
	if err != nil {
		t.Fatal(err)
	}
	var events []RoundEvent
	sys.Subscribe(func(ev RoundEvent) { events = append(events, ev) })
	if _, err := sys.Step(healRounds); err != nil {
		t.Fatal(err)
	}
	return events
}

// TestBareKillReconverges is the tentpole acceptance: for every shape
// family, a bare 50% kill reconverges to accuracy 1.0 within the
// reconvergence budget, with at least one self-healing repair on record.
func TestBareKillReconverges(t *testing.T) {
	for _, sh := range healShapes {
		t.Run(sh.name, func(t *testing.T) {
			events := runHeal(t, healSource(sh.clause))
			heals := 0
			converged := false
			for _, ev := range events {
				heals += ev.Heals
				if ev.Round > healKillRound && ev.Converged {
					converged = true
				}
			}
			if heals == 0 {
				t.Fatalf("bare 50%% kill triggered no self-healing repair")
			}
			if !converged {
				last := events[len(events)-1]
				t.Fatalf("no reconvergence within %d rounds of the kill; final accuracy: %v",
					healRounds-healKillRound, last.Accuracy)
			}
			if last := events[len(events)-1]; !last.Converged {
				t.Fatalf("system reconverged but did not stay converged; final accuracy: %v", last.Accuracy)
			}
		})
	}
}

// TestNoHealStaysStuck proves the reconvergence above is the repair's
// doing, not slack in the budget: with healing disabled the same timelines
// never reconverge and never heal. The gap is pinned on the shapes where
// index holes reliably break the gradient: tree and grid at every seed,
// star-hub when the blast reaches the low indices. (The torus shapes are
// deliberately absent — the cyclic metric keeps every surviving cell's wrap
// edges rank-1 at any size, so the sparse-index gap does not reliably
// manifest there.)
func TestNoHealStaysStuck(t *testing.T) {
	cases := []struct {
		shape string
		seed  int64
	}{
		{"tree", 5},
		{"grid", 5},
		{"star-hub", 7},
	}
	for _, tc := range cases {
		t.Run(tc.shape, func(t *testing.T) {
			var clause string
			for _, sh := range healShapes {
				if sh.name == tc.shape {
					clause = sh.clause
				}
			}
			events := runHeal(t, healSource(clause), WithHealing(false), WithSeed(tc.seed))
			for _, ev := range events {
				if ev.Heals != 0 {
					t.Fatalf("WithHealing(false) run still healed at round %d", ev.Round)
				}
				if ev.Round > healKillRound && ev.Converged {
					t.Fatalf("WithHealing(false) run converged at round %d; the legacy gap is gone", ev.Round)
				}
			}
		})
	}
}

// TestHealOptionPrecedence pins the knob plumbing: `option heal 0` in the
// topology source disables healing, and an explicit WithHealing option
// overrides the file either way.
func TestHealOptionPrecedence(t *testing.T) {
	src := healSource(healShapes[0].clause)
	noHealSrc := strings.Replace(src, "nodes 96", "nodes 96\n  option heal 0", 1)

	countHeals := func(events []RoundEvent) int {
		n := 0
		for _, ev := range events {
			n += ev.Heals
		}
		return n
	}
	if n := countHeals(runHeal(t, noHealSrc)); n != 0 {
		t.Fatalf("option heal 0 source healed %d times", n)
	}
	if n := countHeals(runHeal(t, noHealSrc, WithHealing(true))); n == 0 {
		t.Fatal("WithHealing(true) did not override option heal 0")
	}
	if n := countHeals(runHeal(t, src, WithHealing(false))); n != 0 {
		t.Fatalf("WithHealing(false) did not override the default; healed %d times", n)
	}
}

// TestWorkerCountInvariantHeal holds the heal path to the engine's
// cross-worker determinism bar: the bare-kill timeline — kill, repair,
// reconvergence — must stream byte-identically for workers 1, 2, 4, 8.
func TestWorkerCountInvariantHeal(t *testing.T) {
	for _, sh := range healShapes {
		t.Run(sh.name, func(t *testing.T) {
			assertWorkerInvariant(t, healSource(sh.clause),
				WithSeed(5), WithRounds(healRounds), WithScenario(healScenario()))
		})
	}
}

// TestResumeEquivalenceMidHeal snapshots a bare-kill run while the repair's
// reconvergence is still in flight and requires the restored run — at a
// different worker count — to complete the stream byte-identically to the
// uninterrupted run. Heal state (the heals counter, the compacted index
// space) must therefore round-trip exactly through the snapshot codec.
func TestResumeEquivalenceMidHeal(t *testing.T) {
	src := healSource(healShapes[0].clause)
	opts := func(extra ...Option) []Option {
		return append([]Option{
			WithSeed(5), WithRounds(healRounds), WithScenario(healScenario()), WithRunToEnd(),
		}, extra...)
	}
	split := healKillRound + 3 // the kill and its heal are behind us, reconvergence is not

	whole, err := New(src, opts(WithWorkers(1))...)
	if err != nil {
		t.Fatal(err)
	}
	var want bytes.Buffer
	whole.Subscribe(JSONLSink(&want))
	if _, err := whole.Step(healRounds); err != nil {
		t.Fatal(err)
	}

	first, err := New(src, opts(WithWorkers(1))...)
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	first.Subscribe(JSONLSink(&got))
	if _, err := first.Step(split); err != nil {
		t.Fatal(err)
	}
	ckpt := t.TempDir() + "/midheal.sosnap"
	if err := first.WriteSnapshot(ckpt); err != nil {
		t.Fatal(err)
	}

	second, err := New(src, opts(WithWorkers(4), WithRestoreFrom(ckpt))...)
	if err != nil {
		t.Fatal(err)
	}
	if r := second.Round(); r != split {
		t.Fatalf("restored round = %d, want %d", r, split)
	}
	second.Subscribe(JSONLSink(&got))
	if _, err := second.Step(healRounds - split); err != nil {
		t.Fatal(err)
	}

	if !bytes.Equal(want.Bytes(), got.Bytes()) {
		wantLines := bytes.Split(want.Bytes(), []byte("\n"))
		gotLines := bytes.Split(got.Bytes(), []byte("\n"))
		for i := 0; i < len(wantLines) && i < len(gotLines); i++ {
			if !bytes.Equal(wantLines[i], gotLines[i]) {
				t.Fatalf("mid-heal resume diverges at line %d:\nwhole: %s\nsplit: %s",
					i+1, wantLines[i], gotLines[i])
			}
		}
		t.Fatalf("mid-heal resume stream length differs: %d vs %d", want.Len(), got.Len())
	}
	if !bytes.Contains(want.Bytes(), []byte(`"heals":`)) {
		t.Fatal("timeline never healed; the mid-heal split proves nothing")
	}
}
