package sosf_test

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sosf/internal/campaign"
)

// TestCorpusReplaysByteIdentical replays every committed fuzzing
// reproducer under testdata/corpus and requires the exact golden event
// stream: each .in file is a minimal .sos distilled by `sos fuzz` from a
// real (seeded) invariant violation, and its .out file is the JSONL
// stream that replay produced when the entry was committed. Any byte of
// drift means runtime behavior changed — regenerate the corpus with
// testdata/corpus/generate-corpus.sh if the change is intentional.
func TestCorpusReplaysByteIdentical(t *testing.T) {
	entries, err := filepath.Glob(filepath.Join("testdata", "corpus", "*.in"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("no corpus entries under testdata/corpus — the regression corpus is gone")
	}
	for _, inPath := range entries {
		name := strings.TrimSuffix(filepath.Base(inPath), ".in")
		t.Run(name, func(t *testing.T) {
			src, err := os.ReadFile(inPath)
			if err != nil {
				t.Fatal(err)
			}
			golden, err := os.ReadFile(strings.TrimSuffix(inPath, ".in") + ".out")
			if err != nil {
				t.Fatalf("corpus entry has no golden stream: %v", err)
			}
			var got bytes.Buffer
			if _, err := campaign.Replay(string(src), &got); err != nil {
				t.Fatalf("replay failed: %v", err)
			}
			if !bytes.Equal(got.Bytes(), golden) {
				t.Errorf("replayed stream differs from %s.out (%d vs %d bytes) — runtime behavior changed; see the header of %s",
					name, got.Len(), len(golden), inPath)
			}
		})
	}
}
