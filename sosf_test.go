package sosf

import (
	"strings"
	"testing"
)

const pairSrc = `
topology pair {
    component left ring {
        weight 1
        port out
    }
    component right ring {
        weight 1
        port in
    }
    link left.out right.in
    nodes 120
}`

func TestValidate(t *testing.T) {
	if err := Validate(pairSrc); err != nil {
		t.Fatalf("valid source rejected: %v", err)
	}
	if err := Validate("topology broken {"); err == nil {
		t.Fatal("invalid source accepted")
	}
	if err := Validate("topology t { component c blob }"); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

func TestRunEndToEnd(t *testing.T) {
	rep, err := Run(pairSrc, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("did not converge:\n%s", rep)
	}
	if rep.Components != 2 || rep.Links != 1 || rep.Nodes != 120 {
		t.Fatalf("report = %+v", rep)
	}
	if len(rep.Subs) != 5 {
		t.Fatalf("subs = %d", len(rep.Subs))
	}
	for _, s := range rep.Subs {
		if s.ConvergedAt < 0 || s.Final < 1.0 {
			t.Fatalf("%s: convergedAt=%d final=%f", s.Name, s.ConvergedAt, s.Final)
		}
	}
	if rep.BaselineBytes <= 0 || rep.OverheadBytes <= 0 {
		t.Fatalf("bandwidth missing: %+v", rep)
	}
	out := rep.String()
	if !strings.Contains(out, "Elementary Topology") || !strings.Contains(out, "converged: true") {
		t.Fatalf("report rendering:\n%s", out)
	}
}

func TestRunErrors(t *testing.T) {
	if _, err := Run("topology t { component c ring }", Options{}); err == nil {
		t.Fatal("missing population should fail")
	}
	if _, err := Run("not a topology", Options{Nodes: 10}); err == nil {
		t.Fatal("parse error should surface")
	}
}

func TestNodesOptionOverride(t *testing.T) {
	rep, err := Run(pairSrc, Options{Nodes: 60, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Nodes != 60 {
		t.Fatalf("Options.Nodes should win over the DSL value: %d", rep.Nodes)
	}
}

func TestSystemReconfigure(t *testing.T) {
	sys, err := New(pairSrc, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(100); err != nil {
		t.Fatal(err)
	}
	if !sys.Report().Converged {
		t.Fatal("precondition: converged")
	}
	three := strings.Replace(pairSrc, "link left.out right.in",
		"component mid ring { weight 1 port a port b }\n link left.out mid.a\n link mid.b right.in", 1)
	if err := sys.ReconfigureSource(three); err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(120); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.Components != 3 || rep.Links != 2 {
		t.Fatalf("reconfigured report = %+v", rep)
	}
	if !rep.Converged {
		t.Fatalf("did not re-converge:\n%s", rep)
	}
}

func TestSystemKillAndRecover(t *testing.T) {
	sys, err := New(pairSrc, Options{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(100); err != nil {
		t.Fatal(err)
	}
	killed := sys.Kill(0.3)
	if killed != 36 {
		t.Fatalf("killed %d, want 36", killed)
	}
	acc := sys.Accuracy()
	if acc["Elementary Topology"] >= 1.0 {
		t.Fatal("blast should break some target edges")
	}
	if _, err := sys.Step(100); err != nil {
		t.Fatal(err)
	}
	if got := sys.Accuracy()["Port Selection"]; got < 1.0 {
		t.Fatalf("port selection should recover, got %f", got)
	}
}

func TestChurnOption(t *testing.T) {
	sys, err := New(pairSrc, Options{Seed: 7, ChurnRate: 0.02, RunToEnd: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(40); err != nil {
		t.Fatal(err)
	}
	rep := sys.Report()
	if rep.Nodes != 120 {
		t.Fatalf("population drifted: %d", rep.Nodes)
	}
	if rep.Rounds != 40 {
		t.Fatalf("RunToEnd should not stop early: %d rounds", rep.Rounds)
	}
}

func TestDOT(t *testing.T) {
	sys, err := New(pairSrc, Options{Seed: 8})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(100); err != nil {
		t.Fatal(err)
	}
	dot := sys.DOT()
	for _, want := range []string{"graph \"pair\"", "fillcolor", "shape=box", " -- "} {
		if !strings.Contains(dot, want) {
			t.Fatalf("DOT missing %q:\n%.400s", want, dot)
		}
	}
	// Two ring components of 60 nodes: expect ~120 node lines.
	if strings.Count(dot, "\n  n") < 120 {
		t.Fatal("DOT seems to be missing nodes")
	}
}

func TestLossOption(t *testing.T) {
	rep, err := Run(pairSrc, Options{Seed: 9, LossRate: 0.15, Rounds: 200})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Converged {
		t.Fatalf("should converge under 15%% loss:\n%s", rep)
	}
}
