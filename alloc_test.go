package sosf

// Allocation-regression guard for the gossip hot path: a steady-state
// round must not touch the heap. Protocol exchanges run entirely on the
// engine's scratch pad (sim.Pad), the alive-slot cache, and the meter's
// arena, so once buffers have grown to their working size the only way a
// round allocates is a regression — which this test turns into a failure
// instead of a slow creep across PRs.

import (
	"testing"

	"sosf/internal/core"
	"sosf/internal/eval"
	"sosf/internal/peersampling"
	"sosf/internal/sim"
)

// TestCyclonRoundAllocationFree pins the bottom of the stack: one round of
// the peer-sampling service (Cyclon) over 1 000 stable nodes performs zero
// heap allocations.
func TestCyclonRoundAllocationFree(t *testing.T) {
	eng := sim.New(1)
	rps := peersampling.New(peersampling.Options{})
	eng.Register(rps)
	for _, slot := range eng.AddNodes(1000) {
		eng.InitNode(slot)
	}
	// Warm past bootstrap so views are full and every scratch buffer has
	// reached its steady-state capacity.
	if _, err := eng.Run(30); err != nil {
		t.Fatal(err)
	}
	const rounds = 100
	eng.Meter().Reserve(rounds + 1)
	avg := testing.AllocsPerRun(rounds, func() {
		eng.RunRound()
	})
	if avg != 0 {
		t.Fatalf("steady-state Cyclon round allocates: %v allocs/round, want 0", avg)
	}
}

// TestFullStackRoundAllocationFree bounds the whole runtime stack (peer
// sampling, UO1, UO2, core overlay, port selection, port connection): a
// steady-state round over 1 000 nodes performs zero heap allocations —
// every exchange runs on the engine pad, every table on retained storage.
func TestFullStackRoundAllocationFree(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Topology: eval.MustTopology(eval.RingOfRingsDSL(4)),
		Nodes:    1000,
		Seed:     1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Run(30); err != nil {
		t.Fatal(err)
	}
	const rounds = 50
	sys.Engine().Meter().Reserve(rounds + 1)
	avg := testing.AllocsPerRun(rounds, func() {
		sys.Engine().RunRound()
	})
	if avg != 0 {
		t.Fatalf("steady-state full-stack round allocates: %v allocs/round, want 0", avg)
	}
}
