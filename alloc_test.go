package sosf

// Allocation-regression guard for the gossip hot path: a steady-state
// round must not touch the heap — at any worker count. Protocol phases run
// entirely on per-worker scratch pads (sim.Pad), per-slot retained plan
// records, intrusive inbox lists (sim.Inbox), the alive-slot cache, and the
// meter's arena; the worker pool parks its goroutines between phases
// instead of respawning them. Once buffers have grown to their working size
// the only way a round allocates is a regression — which this test turns
// into a failure instead of a slow creep across PRs.

import (
	"fmt"
	"testing"

	"sosf/internal/core"
	"sosf/internal/eval"
	"sosf/internal/peersampling"
	"sosf/internal/sim"
)

// allocWorkerCounts are the pool widths the steady state must stay
// heap-silent at. Worker counts beyond the core count still shard (the
// goroutines interleave), so the guard is meaningful even on small runners.
var allocWorkerCounts = []int{1, 2, 4, 8}

// TestCyclonRoundAllocationFree pins the bottom of the stack: one round of
// the peer-sampling service (Cyclon) over 1 000 stable nodes performs zero
// heap allocations, for every worker count.
func TestCyclonRoundAllocationFree(t *testing.T) {
	for _, workers := range allocWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			eng := sim.New(1)
			eng.SetWorkers(workers)
			rps := peersampling.New(peersampling.Options{})
			eng.Register(rps)
			for _, slot := range eng.AddNodes(1000) {
				eng.InitNode(slot)
			}
			// Warm past bootstrap so views are full, every scratch buffer
			// has reached its steady-state capacity, and the worker pool
			// has spawned its goroutines.
			if _, err := eng.Run(30); err != nil {
				t.Fatal(err)
			}
			const rounds = 100
			eng.Meter().Reserve(rounds + 1)
			avg := testing.AllocsPerRun(rounds, func() {
				eng.RunRound()
			})
			if avg != 0 {
				t.Fatalf("steady-state Cyclon round allocates: %v allocs/round, want 0", avg)
			}
		})
	}
}

// TestFullStackRoundAllocationFree bounds the whole runtime stack (peer
// sampling, UO1, UO2, core overlay, port selection, port connection): a
// steady-state round over 1 000 nodes performs zero heap allocations at
// every worker count — every phase runs on worker pads, plan records, and
// retained tables.
func TestFullStackRoundAllocationFree(t *testing.T) {
	for _, workers := range allocWorkerCounts {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			sys, err := core.NewSystem(core.Config{
				Topology: eval.MustTopology(eval.RingOfRingsDSL(4)),
				Nodes:    1000,
				Seed:     1,
				Workers:  workers,
			})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := sys.Run(30); err != nil {
				t.Fatal(err)
			}
			const rounds = 50
			sys.Engine().Meter().Reserve(rounds + 1)
			avg := testing.AllocsPerRun(rounds, func() {
				sys.Engine().RunRound()
			})
			if avg != 0 {
				t.Fatalf("steady-state full-stack round allocates: %v allocs/round, want 0", avg)
			}
		})
	}
}
