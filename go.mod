module sosf

go 1.22
