package sosf

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// --- functional options ---------------------------------------------------

// TestSeedZeroIsRepresentable is the regression test for the zero-value
// wart: the legacy Options struct could not express seed 0 (it silently
// became the default 1); WithSeed(0) must honor it.
func TestSeedZeroIsRepresentable(t *testing.T) {
	seed0a, err := Run(pairSrc, WithSeed(0), WithRounds(40), WithRunToEnd())
	if err != nil {
		t.Fatal(err)
	}
	seed0b, err := Run(pairSrc, WithSeed(0), WithRounds(40), WithRunToEnd())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(seed0a, seed0b) {
		t.Fatal("seed 0 must be deterministic")
	}
	seed1, err := Run(pairSrc, WithSeed(1), WithRounds(40), WithRunToEnd())
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(seed0a, seed1) {
		t.Fatal("WithSeed(0) must run seed 0, not fall back to the default seed 1")
	}
	// The legacy struct keeps its legacy semantics: Seed 0 means default.
	legacy, err := Run(pairSrc, Options{Seed: 0, Rounds: 40, RunToEnd: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(legacy, seed1) {
		t.Fatal("Options{Seed: 0} must keep meaning the default seed 1")
	}
}

// TestRoundsZeroIsRepresentable: WithRounds(0) builds the system and
// simulates nothing — also unrepresentable with the legacy struct.
func TestRoundsZeroIsRepresentable(t *testing.T) {
	rep, err := Run(pairSrc, WithRounds(0), WithSeed(2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 0 {
		t.Fatalf("WithRounds(0) executed %d rounds", rep.Rounds)
	}
	if rep.Nodes != 120 {
		t.Fatalf("system must still be built: %d nodes", rep.Nodes)
	}
	// Legacy struct: Rounds 0 means the default cap.
	legacy, err := Run(pairSrc, Options{Rounds: 0, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if legacy.Rounds == 0 {
		t.Fatal("Options{Rounds: 0} must keep meaning the default cap")
	}
}

func TestOptionValidation(t *testing.T) {
	cases := [][]Option{
		{WithNodes(-1)},
		{WithRounds(-1)},
		{WithLoss(-0.1)},
		{WithLoss(1.0)},
		{WithChurn(1.5)},
		{WithWorkers(-3)},
	}
	for i, opts := range cases {
		if _, err := New(pairSrc, opts...); err == nil {
			t.Fatalf("case %d: invalid option accepted", i)
		}
	}
}

func TestLegacyOptionsShimMatchesFunctionalOptions(t *testing.T) {
	a, err := Run(pairSrc, Options{Seed: 9, Rounds: 60, LossRate: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(pairSrc, WithSeed(9), WithRounds(60), WithLoss(0.05))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("shim and functional options diverge:\n%v\nvs\n%v", a, b)
	}
}

// --- machine-readable report ---------------------------------------------

func TestReportJSONStableFieldNames(t *testing.T) {
	rep, err := Run(pairSrc, WithSeed(3))
	if err != nil {
		t.Fatal(err)
	}
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{
		`"topology"`, `"components"`, `"links"`, `"nodes"`, `"rounds"`,
		`"converged"`, `"subs"`, `"baseline_bytes"`, `"overhead_bytes"`,
		`"name"`, `"converged_at"`, `"final"`,
	} {
		if !strings.Contains(string(raw), field) {
			t.Fatalf("report JSON missing %s:\n%s", field, raw)
		}
	}
	var back Report
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*rep, back) {
		t.Fatal("report does not round-trip through JSON")
	}
}

// --- targeted failure injection ------------------------------------------

func TestKillComponent(t *testing.T) {
	sys, err := New(pairSrc, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(100); err != nil {
		t.Fatal(err)
	}
	before := sys.Report().Nodes
	killed := sys.KillComponent("left")
	if killed <= 0 {
		t.Fatal("killing an existing component must fail nodes")
	}
	if got := sys.Report().Nodes; got != before-killed {
		t.Fatalf("population %d after killing %d of %d", got, killed, before)
	}
	// Ports of an emptied component have no manager any more.
	if _, ok := sys.Managers()["left.out"]; ok {
		t.Fatal("an emptied component must not elect port managers")
	}
	if _, ok := sys.Managers()["right.in"]; !ok {
		t.Fatal("the surviving component keeps its port manager")
	}
	if got := sys.KillComponent("no_such_component"); got != 0 {
		t.Fatalf("unknown component killed %d nodes", got)
	}
}

func TestReconfigureSourceRejectsBadSource(t *testing.T) {
	sys, err := New(pairSrc, WithSeed(12))
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.ReconfigureSource("topology broken {"); err == nil {
		t.Fatal("invalid reconfiguration source accepted")
	}
	if err := sys.ReconfigureSource("topology t { component c blob }"); err == nil {
		t.Fatal("unknown shape accepted")
	}
}

// --- scenario API ---------------------------------------------------------

// threeSrc is pairSrc with a third ring spliced in between.
var threeSrc = strings.Replace(pairSrc, "link left.out right.in",
	"component mid ring { weight 1 port a port b }\n link left.out mid.a\n link mid.b right.in", 1)

func demoScenario() Scenario {
	return Scenario{
		During(5, 8, Loss(0.2)),
		At(10, Kill(0.25)),
		At(15, Join(30)),
		At(20, Reconfigure(threeSrc)),
		During(30, 33, Churn(0.02)),
		At(36, Partition(2)),
		At(38, Heal()),
		At(40, KillComponent("mid")),
	}
}

// playRun executes the demo scenario and returns the JSONL event stream
// plus the final report.
func playRun(t *testing.T) (string, *Report) {
	t.Helper()
	var buf bytes.Buffer
	sys, err := New(pairSrc,
		WithSeed(21),
		WithScenario(demoScenario()),
		WithEvents(JSONLSink(&buf)),
	)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(50); err != nil {
		t.Fatal(err)
	}
	return buf.String(), sys.Report()
}

// TestScenarioDeterminism: same seed + same scenario must produce a
// byte-identical event stream and an identical final report.
func TestScenarioDeterminism(t *testing.T) {
	streamA, repA := playRun(t)
	streamB, repB := playRun(t)
	if streamA != streamB {
		t.Fatal("event streams differ between identical runs")
	}
	if !reflect.DeepEqual(repA, repB) {
		t.Fatalf("final reports differ:\n%v\nvs\n%v", repA, repB)
	}
}

func TestScenarioEventStream(t *testing.T) {
	stream, rep := playRun(t)
	lines := strings.Split(strings.TrimSpace(stream), "\n")
	if len(lines) != 50 {
		t.Fatalf("got %d events, want one per round (50)", len(lines))
	}
	byRound := make(map[int]RoundEvent, len(lines))
	for _, line := range lines {
		var ev RoundEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("line %q: %v", line, err)
		}
		if len(ev.Accuracy) != 5 {
			t.Fatalf("round %d: %d accuracy series", ev.Round, len(ev.Accuracy))
		}
		byRound[ev.Round] = ev
	}
	for round, want := range map[int]string{
		5:  "loss 0.2",
		8:  "loss restored",
		10: "kill 0.25",
		15: "join 30",
		20: "reconfigure",
		30: "churn 0.02",
		36: "partition 2",
		38: "heal",
		40: "kill component mid",
	} {
		found := false
		for _, a := range byRound[round].Actions {
			if strings.Contains(a, want) {
				found = true
			}
		}
		if !found {
			t.Fatalf("round %d: actions %v do not mention %q", round, byRound[round].Actions, want)
		}
	}
	if len(byRound[3].Actions) != 0 {
		t.Fatalf("quiet round carries actions: %v", byRound[3].Actions)
	}
	// The kill at round 10 and the join at 15 move the population.
	if byRound[10].Nodes >= byRound[9].Nodes {
		t.Fatal("kill must shrink the population")
	}
	if byRound[15].Nodes != byRound[14].Nodes+30 {
		t.Fatal("join must grow the population by 30")
	}
	// The reconfiguration took: the final report describes three rings.
	if rep.Components != 3 || rep.Links != 2 {
		t.Fatalf("final report = %+v", rep)
	}
}

func TestScenarioValidationAtNew(t *testing.T) {
	cases := []Scenario{
		{At(5, Kill(1.5))},
		{At(-1, Kill(0.5))},
		{During(9, 3, Loss(0.1))},
		{At(5, Reconfigure("topology broken {"))},
		{At(5, KillComponent("ghost"))},
		{At(5, Action{})},
	}
	for i, sc := range cases {
		if _, err := New(pairSrc, WithScenario(sc)); err == nil {
			t.Fatalf("case %d: invalid scenario accepted", i)
		}
	}
}

func TestScenarioHorizonAndRunToEnd(t *testing.T) {
	sys, err := New(pairSrc, WithSeed(5), WithScenario(Scenario{At(42, Kill(0.1))}))
	if err != nil {
		t.Fatal(err)
	}
	if got := sys.ScenarioHorizon(); got != 42 {
		t.Fatalf("ScenarioHorizon() = %d, want 42", got)
	}
	// A scenario implies run-to-end: the system must not stop at its
	// (early) convergence, or the kill would never fire.
	executed, err := sys.Step(45)
	if err != nil {
		t.Fatal(err)
	}
	if executed != 45 {
		t.Fatalf("scenario run stopped early after %d rounds", executed)
	}
	if sys.Report().Nodes >= 120 {
		t.Fatal("the scheduled kill never fired")
	}
}

func TestCSVSink(t *testing.T) {
	var buf bytes.Buffer
	sys, err := New(pairSrc, WithSeed(6), WithRunToEnd(), WithEvents(CSVSink(&buf)))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 4 {
		t.Fatalf("want header + 3 rows, got %d lines", len(lines))
	}
	if !strings.HasPrefix(lines[0], "round,nodes,converged,baseline_bytes,overhead_bytes,Elementary Topology") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[0], ",heals,actions") {
		t.Fatalf("header = %q, want trailing heals,actions columns", lines[0])
	}
	if !strings.HasPrefix(lines[1], "1,120,false,") {
		t.Fatalf("first row = %q", lines[1])
	}
}

// TestDSLAndAPIScenariosCompose: a DSL-embedded timeline and a
// WithScenario timeline both run.
func TestDSLAndAPIScenariosCompose(t *testing.T) {
	src := strings.Replace(pairSrc, "nodes 120",
		"nodes 120\n    scenario { at 5 join 10 }", 1)
	sys, err := New(src, WithSeed(7), WithScenario(Scenario{At(8, Join(5))}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Step(10); err != nil {
		t.Fatal(err)
	}
	if got := sys.Report().Nodes; got != 135 {
		t.Fatalf("population = %d, want 120+10+5", got)
	}
}

// TestRunPlaysWholeTimeline: without an explicit WithRounds, Run must
// extend past the default 150-round cap to the scenario horizon so no
// scheduled action is silently truncated.
func TestRunPlaysWholeTimeline(t *testing.T) {
	rep, err := Run(pairSrc, WithSeed(13), WithScenario(Scenario{At(200, Kill(0.5))}))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Rounds != 200 {
		t.Fatalf("Run executed %d rounds, want the 200-round horizon", rep.Rounds)
	}
	if rep.Nodes != 60 {
		t.Fatalf("the kill at the horizon never fired: %d nodes", rep.Nodes)
	}
	// An explicit WithRounds still wins over the horizon.
	capped, err := Run(pairSrc, WithSeed(13), WithRounds(50),
		WithScenario(Scenario{At(200, Kill(0.5))}))
	if err != nil {
		t.Fatal(err)
	}
	if capped.Rounds != 50 || capped.Nodes != 120 {
		t.Fatalf("WithRounds must cap the run: %+v", capped)
	}
}

// TestOverlappingStatefulWindowsRejected: loss/partition windows save and
// restore state, so overlapping same-state events must fail validation.
func TestOverlappingStatefulWindowsRejected(t *testing.T) {
	bad := []Scenario{
		{During(10, 20, Loss(0.5)), During(15, 30, Loss(0.2))},
		{During(10, 20, Loss(0.5)), During(20, 30, Loss(0.2))}, // shared boundary
		{During(10, 20, Loss(0.5)), At(15, Loss(0.2))},
		{During(10, 20, Partition(2)), At(15, Partition(3))},
		{During(10, 20, Partition(2)), At(15, Heal())},
	}
	for i, sc := range bad {
		if _, err := New(pairSrc, WithScenario(sc)); err == nil {
			t.Fatalf("case %d: overlapping windows accepted", i)
		}
	}
	good := []Scenario{
		{During(10, 20, Loss(0.5)), During(25, 30, Loss(0.2))},
		{At(5, Loss(0.1)), During(20, 30, Loss(0.5))}, // point before the window
		{At(10, Partition(2)), At(20, Heal())},
		{During(10, 20, Loss(0.5)), During(10, 20, Partition(2))}, // different state
	}
	for i, sc := range good {
		if _, err := New(pairSrc, WithScenario(sc)); err != nil {
			t.Fatalf("case %d: legal timeline rejected: %v", i, err)
		}
	}
}
