package sosf

import (
	"fmt"

	"sosf/internal/dsl"
	"sosf/internal/spec"
)

// Scenario is a declarative fault/reconfiguration timeline: an entire
// experiment — churn bursts, message-loss windows, targeted failures,
// partitions, live topology changes — expressed as one value and scheduled
// onto the simulation's per-round hook.
//
//	sc := sosf.Scenario{
//	    sosf.During(10, 20, sosf.Loss(0.3)),
//	    sosf.At(30, sosf.Kill(0.5)),
//	    sosf.At(45, sosf.Reconfigure(newSrc)),
//	}
//	sys, err := sosf.New(src, sosf.WithScenario(sc))
//
// Time is measured in completed rounds: At(0, ...) fires when the system is
// built, At(r, ...) after round r completes. Pulse actions (Kill,
// KillComponent, Join, Churn) fire on every round of a During window;
// window actions (Loss, Partition) change state at the window start and
// restore it at the end; Reconfigure and Heal fire once. The same scenario
// can also be embedded in DSL source as a `scenario { ... }` block.
type Scenario []Step

// Step is one scheduled entry of a Scenario, built with At or During.
type Step struct {
	from, to int
	action   Action
}

// Action is one scripted operation, built with Kill, KillComponent, Join,
// Loss, Churn, Partition, Heal, or Reconfigure.
type Action struct {
	kind      spec.ScenarioKind
	fraction  float64
	count     int
	component string
	src       string // reconfigure DSL source, parsed by New
}

// At schedules an action at a single point of the timeline: round 0 fires
// at construction, round r > 0 fires after round r completes.
func At(round int, a Action) Step {
	return Step{from: round, to: round, action: a}
}

// During schedules an action over the window [from, to] (in completed
// rounds, inclusive). Pulse actions fire every round of the window; Loss
// and Partition apply at from and restore/heal at to.
func During(from, to int, a Action) Step {
	return Step{from: from, to: to, action: a}
}

// Kill fails the given fraction of all alive nodes (catastrophic failure
// injection).
func Kill(fraction float64) Action {
	return Action{kind: spec.ScenKill, fraction: fraction}
}

// KillComponent fails every current member of the named component
// (targeted failure injection).
func KillComponent(name string) Action {
	return Action{kind: spec.ScenKillComponent, component: name}
}

// Join adds n fresh nodes to the population.
func Join(n int) Action {
	return Action{kind: spec.ScenJoin, count: n}
}

// Loss sets the probability that any gossip exchange is lost in transit.
// In a During window the previous rate is restored when the window closes.
func Loss(p float64) Action {
	return Action{kind: spec.ScenLoss, fraction: p}
}

// Churn replaces the given fraction of the population with fresh joins on
// every round of the step's window — During(a, b, Churn(r)) is a churn
// burst.
func Churn(rate float64) Action {
	return Action{kind: spec.ScenChurn, fraction: rate}
}

// Partition splits the alive population into the given number of balanced
// random groups; exchanges across groups are dropped. In a During window
// the partition heals when the window closes; with At it lasts until a
// Heal action.
func Partition(groups int) Action {
	return Action{kind: spec.ScenPartition, count: groups}
}

// Heal removes a network partition.
func Heal() Action {
	return Action{kind: spec.ScenHeal}
}

// Reconfigure swaps in a new target topology from DSL source mid-run — the
// scripted form of System.ReconfigureSource. The source is parsed and
// validated by New, so a broken target fails fast, not mid-experiment.
func Reconfigure(src string) Action {
	return Action{kind: spec.ScenReconfigure, src: src}
}

// compile lowers the scenario onto spec events, parsing Reconfigure
// sources. Validation of ranges happens in spec.ValidateScenario once the
// events are merged with any DSL-embedded timeline.
func (sc Scenario) compile() ([]spec.ScenarioEvent, error) {
	out := make([]spec.ScenarioEvent, 0, len(sc))
	for i, st := range sc {
		ev := spec.ScenarioEvent{
			From:      st.from,
			To:        st.to,
			Kind:      st.action.kind,
			Fraction:  st.action.fraction,
			Count:     st.action.count,
			Component: st.action.component,
		}
		if ev.Kind == "" {
			return nil, fmt.Errorf("scenario step %d: empty action (use Kill, Loss, Reconfigure, ...)", i)
		}
		if ev.Kind == spec.ScenReconfigure {
			topo, err := dsl.ParseTopology(st.action.src)
			if err != nil {
				return nil, fmt.Errorf("scenario step %d: reconfigure: %w", i, err)
			}
			ev.Reconfigure = topo
		}
		out = append(out, ev)
	}
	return out, nil
}
